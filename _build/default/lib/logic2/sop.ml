(* Small SOP expression parser used by tests, examples and the BLIF
   reader. Grammar: terms separated by '+', literals within a term
   separated by '*' (or whitespace); '!x' negates. *)

let split_on_chars seps s =
  let buf = Buffer.create 8 and out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if List.mem c seps then flush () else Buffer.add_char buf c) s;
  flush ();
  List.rev !out

let parse ~vars s =
  let n = Array.length vars in
  let index name =
    let rec find i =
      if i >= n then failwith (Printf.sprintf "Sop.parse: unknown variable %S" name)
      else if vars.(i) = name then i
      else find (i + 1)
    in
    find 0
  in
  let parse_literal tok =
    let tok = String.trim tok in
    if tok = "" then failwith "Sop.parse: empty literal"
    else if tok.[0] = '!' then (index (String.sub tok 1 (String.length tok - 1)), false)
    else (index tok, true)
  in
  let parse_term term =
    let term = String.trim term in
    if term = "1" then Cube.universe n
    else
      let lits = split_on_chars [ '*'; ' '; '\t' ] term in
      Cube.make n (List.map parse_literal lits)
  in
  let terms = split_on_chars [ '+' ] s in
  let terms = List.filter (fun t -> String.trim t <> "" && String.trim t <> "0") terms in
  Cover.of_cubes n (List.map parse_term terms)

(* A BLIF cover row like "01-" over [n] inputs. *)
let cube_of_blif_row n row =
  if String.length row <> n then invalid_arg "Sop.cube_of_blif_row: bad width";
  let lits = ref [] in
  String.iteri
    (fun v c ->
      match c with
      | '1' -> lits := (v, true) :: !lits
      | '0' -> lits := (v, false) :: !lits
      | '-' -> ()
      | _ -> invalid_arg "Sop.cube_of_blif_row: bad character")
    row;
  Cube.make n !lits

let blif_row_of_cube c =
  String.init (Cube.num_vars c) (fun v ->
      match Cube.polarity c v with
      | Cube.Pos -> '1'
      | Cube.Neg -> '0'
      | Cube.Absent -> '-')
