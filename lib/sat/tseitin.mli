(** Tseitin CNF encoding of Boolean networks and a SAT miter. *)

type encoding = {
  solver : Dpll.t;
  var_of_signal : int array;
  next_var : int ref;
}

type input = Const of bool | Lit of Dpll.literal
(** A cover input binding: a solver literal, or a constant partially
    evaluating the cover during encoding. *)

val encode_sop : Dpll.t -> int ref -> Logic2.Cover.t -> input array -> input
(** [encode_sop solver next_var cover binds] CNF-encodes the SOP
    [cover] under per-variable bindings [binds] (indexed by the
    cover's local variable numbers), allocating auxiliary variables
    from [next_var]. Cubes are reduced under the constant bindings, so
    the result may itself be a [Const] when the bindings decide the
    cover outright. *)

val encode_network :
  Dpll.t -> int ref -> input_var:(string -> int) -> Network.t -> encoding

val equivalent : Network.t -> Network.t -> bool
(** SAT-based combinational equivalence (inputs/outputs matched by
    name) — independent of [Network.equivalent]. *)
