lib/circuits/suite.ml: Generator List Printf
