(* Exact SPCF computation (floating-mode timing semantics).

   For a pattern I, a signal z carrying value v stabilizes once some
   prime implicant p of its gate's on-set (v = 1) or off-set (v = 0) is
   satisfied with every literal's source signal already stable. The
   stability function

     S_v(z, T) = patterns where z takes value v and stabilizes by T
               = ⋁_{p ∈ primes_v} ⋀_{l ∈ L(p)} S_{phase(l)}(input_l, T − δ_z)

   is the paper's Eqn. 1 refined per output value; the SPCF at output y is
   Σ_y(T) = ¬(S_0(y,T) ∨ S_1(y,T)).

   Two cost regimes share this engine:
   - the *proposed short-path-based* algorithm memoizes (signal, value,
     budget) globally and cuts recursion with the structural-arrival
     shortcut (a signal is always stable by its static arrival time);
   - the *path-based extension of [22]* explores the same recursion
     without the shortcut and without sharing across outputs, so its
     work grows with the number of distinct path-delay suffixes — the
     path-traversal cost the paper reports as ≈3.5× slower. *)

type options = {
  arrival_shortcut : bool;
  share_across_outputs : bool;
}

let proposed_options = { arrival_shortcut = true; share_across_outputs = true }

let path_based_options = { arrival_shortcut = false; share_across_outputs = false }

let value_bdd ctx s v =
  if v then ctx.Ctx.funcs.(s) else Bdd.bnot ctx.Ctx.man ctx.Ctx.funcs.(s)

let c_stab_calls = Obs.counter "spcf.stability.calls"
let c_stab_memo_hits = Obs.counter "spcf.stability.memo_hits"
let c_stab_shortcut = Obs.counter "spcf.stability.shortcut_cuts"
let c_late_calls = Obs.counter "spcf.lateness.calls"
let c_late_memo_hits = Obs.counter "spcf.lateness.memo_hits"
let h_depth = Obs.histogram "spcf.recursion_depth"

(* Stability S_v(s, budget) with [memo] keyed on (signal, value, budget).
   [depth] only feeds the recursion-depth histogram. *)
let rec stability ctx ~opts ~memo ~depth s v budget =
  Obs.incr c_stab_calls;
  if budget < 0 then Bdd.bfalse
  else begin
    let net = Ctx.network ctx in
    if Network.is_input net s then value_bdd ctx s v
    else if opts.arrival_shortcut && budget >= ctx.Ctx.arrival_units.(s) then begin
      Obs.incr c_stab_shortcut;
      value_bdd ctx s v
    end
    else begin
      let key = (s, v, budget) in
      match Hashtbl.find_opt memo key with
      | Some r ->
        Obs.incr c_stab_memo_hits;
        r
      | None ->
        Obs.observe h_depth depth;
        let on, off = Ctx.primes_of ctx s in
        let cover = if v then on else off in
        let d = ctx.Ctx.delay_units.(s) in
        let fanins = Network.fanins net s in
        let prime_term p =
          List.fold_left
            (fun acc (local, phase) ->
              if acc = Bdd.bfalse then acc
              else
                let child =
                  stability ctx ~opts ~memo ~depth:(depth + 1) fanins.(local)
                    phase (budget - d)
                in
                Bdd.band ctx.Ctx.man acc child)
            Bdd.btrue (Logic2.Cube.literals p)
        in
        let r =
          List.fold_left
            (fun acc p -> Bdd.bor ctx.Ctx.man acc (prime_term p))
            Bdd.bfalse (Logic2.Cover.cubes cover)
        in
        Hashtbl.replace memo key r;
        r
    end
  end

let sigma_of_output ctx ~opts ~memo y target_units =
  let s1 =
    Obs.with_span "stability" (fun () ->
        stability ctx ~opts ~memo ~depth:0 y true target_units)
  in
  let s0 =
    Obs.with_span "stability" (fun () ->
        stability ctx ~opts ~memo ~depth:0 y false target_units)
  in
  Bdd.bnot ctx.Ctx.man (Bdd.bor ctx.Ctx.man s0 s1)

(* Long-path activation ("lateness") functions, computed directly in
   product-of-sums form — the dual formulation the path-based extension
   of [22] uses:

     U_v(z, T) = value_v(z) ∧ ⋀_{p ∈ primes_v} ⋁_{l ∈ L(p)} ¬S(l, T − δ_z)

   where ¬S(l, T') for a literal is "wrong value or not yet stable". The
   result is identical to ¬(S₀ ∨ S₁) (checked by the test suite), but
   the conjunction-of-disjunctions expansion walks every path-suffix
   context — the cost profile of path-based traversal. *)
let rec lateness ctx ~memo ~depth s v budget =
  Obs.incr c_late_calls;
  let man = ctx.Ctx.man in
  let net = Ctx.network ctx in
  if budget < 0 then value_bdd ctx s v
  else if Network.is_input net s then Bdd.bfalse
  else begin
    let key = (s, v, budget) in
    match Hashtbl.find_opt memo key with
    | Some r ->
      Obs.incr c_late_memo_hits;
      r
    | None ->
      Obs.observe h_depth depth;
      let on, off = Ctx.primes_of ctx s in
      let cover = if v then on else off in
      let d = ctx.Ctx.delay_units.(s) in
      let fanins = Network.fanins net s in
      (* ¬S for a literal: value mismatch, or matching but late. *)
      let not_stable local phase =
        let input = fanins.(local) in
        Bdd.bor man
          (value_bdd ctx input (not phase))
          (lateness ctx ~memo ~depth:(depth + 1) input phase (budget - d))
      in
      let prime_blocked p =
        List.fold_left
          (fun acc (local, phase) ->
            if acc = Bdd.btrue then acc else Bdd.bor man acc (not_stable local phase))
          Bdd.bfalse (Logic2.Cube.literals p)
      in
      let blocked_all =
        List.fold_left
          (fun acc p ->
            if acc = Bdd.bfalse then acc else Bdd.band man acc (prime_blocked p))
          Bdd.btrue (Logic2.Cover.cubes cover)
      in
      let r = Bdd.band man (value_bdd ctx s v) blocked_all in
      Hashtbl.replace memo key r;
      r
  end

let sigma_of_output_lateness ctx ~memo y target_units =
  let u1 =
    Obs.with_span "lateness" (fun () ->
        lateness ctx ~memo ~depth:0 y true target_units)
  in
  let u0 =
    Obs.with_span "lateness" (fun () ->
        lateness ctx ~memo ~depth:0 y false target_units)
  in
  Bdd.bor ctx.Ctx.man u0 u1

(* Per-output SPCFs for an explicit output set — the unit of work the
   domain-parallel driver (Spcf.Parallel) hands to each worker. The memo
   is shared across the given outputs exactly when the options say so,
   matching the sequential algorithms' cost profile per worker. *)
let sigmas ctx ~opts ~outputs ~target_units =
  let memo = Hashtbl.create 4096 in
  Array.to_list outputs
  |> List.map (fun (name, y) ->
         (* Un-amortized checkpoint at each output boundary: a worker
            whose team-mate cancelled (or whose deadline passed) stops
            before starting the next cone even if its own op counter
            is cold. *)
         Budget.poll ctx.Ctx.budget;
         if not opts.share_across_outputs then Hashtbl.reset memo;
         let sigma =
           Obs.with_span ("output:" ^ name) (fun () ->
               sigma_of_output ctx ~opts ~memo y target_units)
         in
         (name, y, sigma))

(* Runtimes are measured through [Obs.timed] — the same clock that feeds
   the span tree — so the CLI-reported runtime and the statistics agree
   whether or not observation is enabled. *)
let compute ctx ~opts ~algorithm ~target =
  let outputs, runtime =
    Obs.timed ("spcf." ^ algorithm) (fun () ->
        let target_units = Ctx.units_of_target target in
        let critical = Sta.critical_outputs ctx.Ctx.sta ~target in
        sigmas ctx ~opts ~outputs:critical ~target_units)
  in
  Ctx.make_result ctx ~algorithm ~target outputs ~runtime

let short_path ctx ~target =
  compute ctx ~opts:proposed_options ~algorithm:"short-path-based" ~target

(* Lateness-formulation counterpart of [sigmas]: fresh memo per output,
   as the path-based extension prescribes (no cross-output sharing). *)
let sigmas_lateness ctx ~outputs ~target_units =
  Array.to_list outputs
  |> List.map (fun (name, y) ->
         Budget.poll ctx.Ctx.budget;
         let memo = Hashtbl.create 4096 in
         let sigma =
           Obs.with_span ("output:" ^ name) (fun () ->
               sigma_of_output_lateness ctx ~memo y target_units)
         in
         (name, y, sigma))

(* The exact path-based extension of [22]: per-output computation of the
   long-path activation functions in their direct product-of-sums form,
   without cross-output sharing or the structural-arrival shortcut. *)
let path_based ctx ~target =
  let outputs, runtime =
    Obs.timed "spcf.path-based" (fun () ->
        let target_units = Ctx.units_of_target target in
        let critical = Sta.critical_outputs ctx.Ctx.sta ~target in
        sigmas_lateness ctx ~outputs:critical ~target_units)
  in
  Ctx.make_result ctx ~algorithm:"path-based" ~target outputs ~runtime

(* Exact floating-mode delay of a signal: the largest stabilization time
   over all input patterns, found by binary search on the stability
   functions. This is the circuit's "true" (sensitizable) delay, as
   opposed to the structural delay of static timing analysis. *)
let floating_delay ctx s =
  let man = ctx.Ctx.man in
  let stable_at t =
    let memo = Hashtbl.create 256 in
    let s1 = stability ctx ~opts:proposed_options ~memo ~depth:0 s true t in
    let s0 = stability ctx ~opts:proposed_options ~memo ~depth:0 s false t in
    Bdd.bor man s0 s1 = Bdd.btrue
  in
  (* Smallest t with all patterns stable by t. *)
  let rec search lo hi =
    (* invariant: not (stable_at (lo-1)) ... stable_at hi *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if stable_at mid then search lo mid else search (mid + 1) hi
  in
  let hi = ctx.Ctx.arrival_units.(s) in
  float_of_int (search 0 hi) *. Ctx.grid

(* Exact floating-mode stabilization times (in grid units) of every
   signal for one concrete input pattern — the reference semantics used
   by tests and by brute-force SPCF cross-validation. *)
let pattern_arrivals ctx pattern =
  let net = Ctx.network ctx in
  let values = Network.eval net pattern in
  let n = Network.num_signals net in
  let arrival = Array.make n 0 in
  Array.iter
    (fun s ->
      match Network.node_of net s with
      | None -> ()
      | Some nd ->
        let on, off = Ctx.primes_of ctx s in
        let cover = if values.(s) then on else off in
        let d = ctx.Ctx.delay_units.(s) in
        let consistent p =
          List.for_all
            (fun (local, phase) -> values.(nd.Network.fanins.(local)) = phase)
            (Logic2.Cube.literals p)
        in
        let prime_time p =
          List.fold_left
            (fun acc (local, _) -> max acc (arrival.(nd.Network.fanins.(local)) + d))
            d (Logic2.Cube.literals p)
        in
        let best =
          List.fold_left
            (fun acc p -> if consistent p then min acc (prime_time p) else acc)
            max_int (Logic2.Cover.cubes cover)
        in
        (* Every pattern satisfies some prime of the on-set or off-set. *)
        assert (best < max_int);
        arrival.(s) <- best)
    (Network.topo_order net);
  (values, arrival)
