(** Wire protocol for [emask serve]: length-prefixed JSON frames, one
    request and one response per connection.

    A frame is a 4-byte big-endian length followed by that many bytes
    of JSON (capped at 64 MiB). The request parameter vocabulary
    mirrors the CLI flags, including their validation — the daemon
    enforces the same domains the cmdliner converters do, so a request
    no CLI invocation could express raises {!Protocol_error} instead
    of being silently interpreted. *)

exception Protocol_error of string
(** Framing or codec failure. The server answers with a
    [status = "rejected"], [code = "PROTO001"] response where the
    connection still permits one. *)

val max_frame : int

val read_frame : Unix.file_descr -> string

val write_frame : Unix.file_descr -> string -> unit

type request =
  | Lint of Serve_jobs.circuit * Serve_jobs.lint_req
  | Spcf of Serve_jobs.circuit * Serve_jobs.spcf_req * Budget.spec
  | Paths of Serve_jobs.circuit * Serve_jobs.paths_req * Budget.spec
  | Protect of Serve_jobs.circuit * Serve_jobs.protect_req * Budget.spec
  | Eco of Serve_jobs.circuit * Serve_jobs.eco_req * Budget.spec
  | Ping of float
      (** hold a worker for that many seconds, polling its budget —
          the deterministic way to exercise queue saturation and
          disconnect cancellation *)
  | Metrics  (** the /metrics exposition as an [Ok_output] body *)
  | Shutdown  (** stop accepting, drain workers, exit *)

type response =
  | Ok_output of int * string  (** exit code, rendered output *)
  | Rejected of string * string  (** code, message — admission refusals *)
  | Error_resp of string * string  (** code, message — job failures *)

val parse_request : string -> request
val json_of_request : request -> Obs_json.t
val parse_response : string -> response
val json_of_response : response -> Obs_json.t

val send_request : Unix.file_descr -> request -> unit
val send_response : Unix.file_descr -> response -> unit
val recv_response : Unix.file_descr -> response
