(** Near-critical structural path enumeration over a timed circuit.

    A structural path runs from a primary input to a primary output;
    its length is the sum of driving-gate delays along it.
    [enumerate] lists every path longer than the target
    [(1 - band) * Delta] — the topological near-critical band whose
    members functional sensitization analysis classifies one by one
    ({!Sensitization} in the analysis layer). *)

type path = {
  output : string;  (** primary-output name the path terminates in *)
  signals : Network.signal array;  (** primary input first, output last *)
  length : float;  (** sum of gate delays along the path *)
}

type t = {
  band : float;
  target : float;  (** [(1 - band) * Delta] *)
  paths : path list;  (** grouped by output, outputs in declaration order *)
  truncated : bool;  (** enumeration stopped at the [max_paths] cap *)
}

val enumerate : ?band:float -> ?max_paths:int -> Sta.t -> t
(** Exact and deterministic: every structural path with
    [length > target + Sta.eps] is produced exactly once, outputs in
    declaration order and paths within an output in fanin-DFS order,
    unless the [max_paths] cap (default 4096) stops the walk — which
    sets [truncated] rather than failing or dropping paths silently.
    [band] defaults to [0.1] and must lie in [[0, 1]]; a gate wired to
    one signal on several pins contributes a single path. Raises
    [Invalid_argument] on out-of-range parameters. *)

val num_paths : t -> int

val to_string : Network.t -> path -> string
(** ["a -> n1 -> y (3.000)"] — signal names joined along the path,
    length appended. *)
