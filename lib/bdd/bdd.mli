(** Reduced ordered BDDs. Handles are valid only with the manager that
    created them; equal handles denote equal functions. *)

type t = private int
type man

val bfalse : t
val btrue : t

val create : ?cache_bits:int -> nvars:int -> unit -> man
(** [cache_bits] pins the ite computed-table to [2^cache_bits] entries
    and disables its growth — useful for stress-testing eviction; the
    default is an adaptive cache that tracks the unique table. *)

val nvars : man -> int
val num_nodes : man -> int
(** Total nodes allocated in the manager (a growth diagnostic). *)

val unique_capacity : man -> int
(** Slots in the open-addressing unique table (a power of two). *)

val cache_capacity : man -> int
(** Entries in the direct-mapped ite computed-table (a power of two). *)

val set_budget : man -> Budget.t -> unit
(** Govern this manager: node allocation checks the node quota and each
    [ite] call ticks the operation/deadline/cancellation budget, raising
    [Budget.Budget_exceeded] on exhaustion. The default is
    [Budget.unlimited], under which every check is a single
    physical-equality test. *)

val budget : man -> Budget.t

val clear_caches : man -> unit
(** Drop every ite computed-table entry in O(1) (generation bump). The
    node store and unique table are untouched; results of subsequent
    operations are unchanged — only their cost. *)

val var : man -> int -> t
val nvar : man -> int -> t

val var_of : man -> t -> int
val low_of : man -> t -> t
val high_of : man -> t -> t
val is_terminal : t -> bool

val ite : man -> t -> t -> t -> t
val bnot : man -> t -> t
val band : man -> t -> t -> t
val bor : man -> t -> t -> t
val bxor : man -> t -> t -> t
val bnand : man -> t -> t -> t
val bnor : man -> t -> t -> t
val bxnor : man -> t -> t -> t
val bimply : man -> t -> t -> t
val band_list : man -> t list -> t
val bor_list : man -> t list -> t

val eval : man -> t -> bool array -> bool
val size : man -> t -> int
(** Nodes reachable from the root, terminals included. *)

val support : man -> t -> bool array

val satcount : man -> t -> Extfloat.t
(** Number of satisfying assignments over all manager variables. *)

val any_sat : man -> t -> (int * bool) list option
val sample_sat : man -> t -> rand_float:(unit -> float) -> bool array option
(** Uniform random minterm of the function, or [None] if unsatisfiable. *)

val exists : man -> bool array -> t -> t
val forall : man -> bool array -> t -> t
val restrict : man -> t -> int -> bool -> t
val compose_vec : man -> t -> t array -> t

val cube_with : man -> Logic2.Cube.t -> t array -> t
(** The cube with its variable [v] standing for the function
    [inputs.(v)] — i.e. the cube evaluated on arbitrary signals. *)

val cover_with : man -> Logic2.Cover.t -> t array -> t
val of_cube : man -> Logic2.Cube.t -> t
val of_cover : man -> Logic2.Cover.t -> t
