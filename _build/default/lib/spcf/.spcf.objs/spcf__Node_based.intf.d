lib/spcf/node_based.mli: Ctx
