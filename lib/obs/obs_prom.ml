(* Prometheus text-exposition (version 0.0.4) renderer of the Obs
   registry — the exact payload a future `emask serve` daemon will
   return from its /metrics endpoint, exposed today behind `--prom` so
   the format is exercised, tested and scrape-able from file-based
   collectors long before the daemon exists.

   Mapping:
   - every counter becomes an [emask_]-prefixed gauge (gauge, not
     counter: the registry also holds high-water marks, and a fresh
     process restarts all of them — gauge semantics are the honest
     ones for both);
   - every log2 histogram becomes a Prometheus histogram. Obs bucket i
     holds integer samples in [2^(i-1), 2^i), so the cumulative count
     at le = 2^i - 1 is exact — no approximation is introduced by the
     translation;
   - spans are flattened to two labelled families,
     emask_span_seconds{span="a/b"} and emask_span_calls{span="a/b"},
     with the tree path joined by '/'. *)

let prefix = "emask_"

(* Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Everything else maps to '_'. *)
let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

(* Label values: escape backslash, double-quote and newline. *)
let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let add_counter buf (name, value) =
  let m = prefix ^ sanitize name in
  Printf.bprintf buf "# HELP %s emask counter %s\n" m name;
  Printf.bprintf buf "# TYPE %s gauge\n" m;
  Printf.bprintf buf "%s %d\n" m value

let add_histogram buf (name, (st : Obs.hist_stats)) =
  let m = prefix ^ sanitize name in
  Printf.bprintf buf "# HELP %s emask histogram %s\n" m name;
  Printf.bprintf buf "# TYPE %s histogram\n" m;
  let cumulative = ref 0 in
  List.iter
    (fun (lo, count) ->
      cumulative := !cumulative + count;
      (* Bucket [lo, 2*lo) over integers: inclusive upper bound 2*lo-1
         (the bucket at lo = 0 holds exactly {0}). *)
      let le = if lo = 0 then 0 else (2 * lo) - 1 in
      Printf.bprintf buf "%s_bucket{le=\"%d\"} %d\n" m le !cumulative)
    st.Obs.hbuckets;
  Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" m st.Obs.hn;
  Printf.bprintf buf "%s_sum %d\n" m st.Obs.hsum;
  Printf.bprintf buf "%s_count %d\n" m st.Obs.hn

let add_spans buf root =
  let seconds = Buffer.create 256 and calls = Buffer.create 256 in
  let rec walk path (s : Obs.span) =
    let path = if path = "" then s.Obs.sname else path ^ "/" ^ s.Obs.sname in
    Printf.bprintf seconds "%sspan_seconds{span=\"%s\"} %.9f\n" prefix
      (escape_label path) s.Obs.total;
    Printf.bprintf calls "%sspan_calls{span=\"%s\"} %d\n" prefix
      (escape_label path) s.Obs.calls;
    List.iter (walk path) (List.rev s.Obs.children)
  in
  match List.rev root.Obs.children with
  | [] -> ()
  | tops ->
    List.iter (walk "") tops;
    Printf.bprintf buf "# HELP %sspan_seconds accumulated span wall time\n" prefix;
    Printf.bprintf buf "# TYPE %sspan_seconds gauge\n" prefix;
    Buffer.add_buffer buf seconds;
    Printf.bprintf buf "# HELP %sspan_calls span activation count\n" prefix;
    Printf.bprintf buf "# TYPE %sspan_calls gauge\n" prefix;
    Buffer.add_buffer buf calls

let render () =
  let buf = Buffer.create 1024 in
  List.iter (add_counter buf) (Obs.registered_counters ());
  List.iter (add_histogram buf) (Obs.registered_histograms ());
  add_spans buf (Obs.root ());
  Buffer.contents buf

(* Plain (name, value) gauges in the same exposition dialect — for
   metric sources that live outside the per-domain Obs registry, such
   as the serve daemon's process-wide atomic counters. *)
let exposition counters =
  let buf = Buffer.create 256 in
  List.iter (add_counter buf) counters;
  Buffer.contents buf

let write_file path =
  Obs_json.with_atomic_file path (fun oc -> output_string oc (render ()))
