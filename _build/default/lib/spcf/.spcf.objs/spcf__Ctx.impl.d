lib/spcf/ctx.ml: Array Bdd Cell Float Hashtbl List Logic2 Mapped Network Sta
